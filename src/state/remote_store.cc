#include "state/remote_store.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "common/bytes.h"

namespace whale::state {

RemoteStateBackend::RemoteStateBackend(net::Fabric& fabric,
                                       const net::CostModel& cost,
                                       const StateConfig& cfg, int host_node)
    : fabric_(fabric), cfg_(cfg), host_node_(host_node),
      plane_(fabric, cost, host_node) {}

std::map<std::string, std::vector<uint8_t>> RemoteStateBackend::parse_snapshot(
    std::span<const uint8_t> blob) {
  std::map<std::string, std::vector<uint8_t>> cells;
  if (blob.empty()) return cells;
  ByteReader r(blob);
  const size_t n = r.get_varint();
  for (size_t i = 0; i < n; ++i) {
    std::string name = r.get_string();
    cells[std::move(name)] = r.get_bytes();
  }
  return cells;
}

void RemoteStateBackend::bind_task(int task, int node,
                                   std::span<const uint8_t> epoch0_image) {
  TaskImage img;
  img.node = node;
  img.cells = parse_snapshot(epoch0_image);
  const uint64_t want =
      std::max<uint64_t>(epoch0_image.size(), cfg_.mr_min_capacity);
  img.rkey = mrs_.register_region(want);
  images_[task] = std::move(img);
  stats_.regions = mrs_.count();
  stats_.region_bytes = mrs_.registered_bytes();
}

void RemoteStateBackend::write_snapshot(int task, uint64_t epoch,
                                        sim::CpuServer* initiator,
                                        std::vector<uint8_t> delta,
                                        uint64_t extra_bytes,
                                        std::function<void()> on_written) {
  auto it = images_.find(task);
  assert(it != images_.end() && "write_snapshot before bind_task");
  TaskImage& img = it->second;
  // Stage at post time (simulation-side bookkeeping); the committed image
  // only moves at commit(), so a recovery racing this write still READs
  // the previous epoch.
  img.staged = true;
  img.staged_epoch = epoch;
  img.staged_delta = std::move(delta);
  const uint64_t bytes = img.staged_delta.size() + extra_bytes;
  // A grown image re-registers its region; the pin + rkey exchange is
  // charged as extra latency on this write's post.
  Duration extra = 0;
  if (mrs_.ensure_capacity(img.rkey, bytes)) {
    extra = cfg_.mr_register_latency;
    ++stats_.region_grows;
    stats_.region_bytes = mrs_.registered_bytes();
  }
  mrs_.note_write(img.rkey, bytes);
  ++stats_.writes_posted;
  plane_.write(
      initiator, img.node, bytes, extra,
      [this, bytes, on_written = std::move(on_written)] {
        stats_.write_bytes += bytes;
        if (on_written) on_written();
      },
      [this] { ++stats_.write_drops; });
}

void RemoteStateBackend::apply_delta(TaskImage& img,
                                     std::span<const uint8_t> delta) const {
  const uint64_t page = cfg_.delta_page_bytes;
  ByteReader r(delta);
  const size_t n_cells = r.get_varint();
  for (size_t i = 0; i < n_cells; ++i) {
    const std::string name = r.get_string();
    const uint64_t new_size = r.get_varint();
    const size_t n_pages = r.get_varint();
    std::vector<uint8_t>& body = img.cells[name];
    body.resize(new_size, 0);
    for (size_t p = 0; p < n_pages; ++p) {
      const uint64_t idx = r.get_varint();
      const std::vector<uint8_t> bytes = r.get_bytes();
      const size_t off = static_cast<size_t>(idx * page);
      assert(off + bytes.size() <= body.size());
      std::copy(bytes.begin(), bytes.end(),
                body.begin() + static_cast<ptrdiff_t>(off));
    }
  }
}

void RemoteStateBackend::commit(uint64_t epoch) {
  for (auto& [task, img] : images_) {
    if (!img.staged || img.staged_epoch != epoch) continue;
    apply_delta(img, img.staged_delta);
    img.staged = false;
    img.staged_delta.clear();
    img.assembled_valid = false;
  }
}

void RemoteStateBackend::abort(uint64_t epoch) {
  for (auto& [task, img] : images_) {
    if (img.staged && img.staged_epoch == epoch) {
      img.staged = false;
      img.staged_delta.clear();
    }
  }
}

void RemoteStateBackend::read_images(sim::CpuServer* initiator, int node,
                                     std::function<void()> on_data) {
  const uint64_t bytes = committed_bytes_total();
  ++stats_.reads_posted;
  plane_.read(
      initiator, node, bytes,
      [this, bytes, on_data = std::move(on_data)] {
        stats_.read_bytes += bytes;
        if (on_data) on_data();
      },
      [this] { ++stats_.read_drops; });
}

const std::vector<uint8_t>& RemoteStateBackend::committed_image(
    int task) const {
  static const std::vector<uint8_t> kEmpty;
  auto it = images_.find(task);
  if (it == images_.end()) return kEmpty;
  const TaskImage& img = it->second;
  if (!img.assembled_valid) {
    ByteWriter w;
    w.put_varint(img.cells.size());
    for (const auto& [name, body] : img.cells) {  // std::map: sorted names
      w.put_string(name);
      w.put_bytes(std::span<const uint8_t>(body.data(), body.size()));
    }
    img.assembled = w.take();
    img.assembled_valid = true;
  }
  return img.assembled;
}

uint64_t RemoteStateBackend::committed_bytes_total() const {
  uint64_t n = 0;
  for (const auto& [task, img] : images_) {
    n += committed_image(task).size();
  }
  return n;
}

}  // namespace whale::state
