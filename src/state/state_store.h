// Keyed/operator state registration + serde (DESIGN.md §10, §12).
//
// Each executor owns one StateStore. During prepare() the operator
// registers named cells — a (save, restore) closure pair over its live
// in-memory structures. A snapshot serializes every cell into one
// length-prefixed byte blob (via ByteWriter); restore replays the blob
// back through the matching cells by name, so layout changes between
// registration orders are tolerated as long as names survive.
//
// For the remote-state backend (DESIGN.md §12) the store additionally
// tracks a per-cell *baseline*: the serialized bytes of the last
// committed snapshot. snapshot_delta() diffs the current serialization
// against it — clean cells are skipped entirely and dirty cells are
// shipped page-granular (only the changed pages cross the wire), which
// is what makes one-sided incremental checkpoints cheap. Dirtiness is
// detected by content comparison, never by an operator-declared flag, so
// a missed annotation can never silently corrupt a checkpoint.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "common/bytes.h"

namespace whale::state {

class StateStore {
 public:
  using SaveFn = std::function<void(ByteWriter&)>;
  using RestoreFn = std::function<void(ByteReader&)>;

  // Byte accounting of one snapshot_delta() call.
  struct DeltaStats {
    uint64_t shipped_bytes = 0;  // encoded delta blob size
    uint64_t full_bytes = 0;     // what snapshot() would have produced
    uint32_t dirty_cells = 0;
    uint32_t clean_cells = 0;
  };

  // Registers a named cell. Names must be unique within one store; the
  // pair is invoked on every snapshot/restore of the owning executor.
  void register_cell(std::string name, SaveFn save, RestoreFn restore);

  // Serializes all cells: varint cell count, then per cell
  // {string name, varint body_size, body bytes}. Cells are emitted in
  // registration order, which is fixed at prepare() time — the blob is
  // byte-stable across runs and platforms.
  std::vector<uint8_t> snapshot() const;

  // Differential snapshot against the committed baseline: varint dirty
  // cell count, then per dirty cell {string name, varint new_body_size,
  // varint n_pages, pages {varint page_index, varint page_size, bytes}}.
  // A cell whose serialized bytes equal its baseline is clean and absent
  // from the blob; a dirty cell ships only the pages (page_bytes-sized
  // slices of its body) that differ. With force_full (or an empty
  // baseline) every cell ships all its pages — the encoding is the same,
  // so full and incremental snapshots share one apply path.
  //
  // The fresh serialization is staged as the *pending* baseline:
  // commit_baseline() promotes it when the epoch commits,
  // drop_pending_baseline() discards it when the epoch aborts (so the
  // next delta is diffed against the image the store host actually has).
  std::vector<uint8_t> snapshot_delta(uint64_t page_bytes, bool force_full,
                                      DeltaStats* stats = nullptr);
  void commit_baseline();
  void drop_pending_baseline();

  // Resets the committed baseline to `full_image` (a snapshot()-format
  // blob) and drops any pending baseline. Used after recovery: the next
  // delta must be diffed against the image the backend restored, for
  // every task — including spouts, whose live operator cells are not
  // rolled back but whose host-resident images are the committed ones.
  void rebase(std::span<const uint8_t> full_image);

  // Replays a snapshot produced by this store (or an identically
  // registered one). Unknown cell names are skipped; registered cells
  // missing from the blob are left untouched.
  void restore(std::span<const uint8_t> blob);

  // Like restore(), but only replays cells whose name passes `filter`.
  // Used by recovery paths that roll back a subset of an executor's state
  // (e.g. spout routing cursors while the source-reader cells stay live).
  void restore_if(std::span<const uint8_t> blob,
                  const std::function<bool(const std::string&)>& filter);

  // True if any registered cell name passes `filter`.
  bool has_cell_matching(
      const std::function<bool(const std::string&)>& filter) const;

  size_t cell_count() const { return cells_.size(); }
  bool empty() const { return cells_.empty(); }

 private:
  struct Cell {
    std::string name;
    SaveFn save;
    RestoreFn restore;
    std::vector<uint8_t> baseline;  // last committed serialization
    std::vector<uint8_t> pending;   // staged by snapshot_delta()
    bool has_pending = false;
  };
  std::vector<Cell> cells_;
};

}  // namespace whale::state
