// Keyed/operator state registration + serde (DESIGN.md §10).
//
// Each executor owns one StateStore. During prepare() the operator
// registers named cells — a (save, restore) closure pair over its live
// in-memory structures. A snapshot serializes every cell into one
// length-prefixed byte blob (via ByteWriter); restore replays the blob
// back through the matching cells by name, so layout changes between
// registration orders are tolerated as long as names survive.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "common/bytes.h"

namespace whale::state {

class StateStore {
 public:
  using SaveFn = std::function<void(ByteWriter&)>;
  using RestoreFn = std::function<void(ByteReader&)>;

  // Registers a named cell. Names must be unique within one store; the
  // pair is invoked on every snapshot/restore of the owning executor.
  void register_cell(std::string name, SaveFn save, RestoreFn restore);

  // Serializes all cells: varint cell count, then per cell
  // {string name, varint body_size, body bytes}.
  std::vector<uint8_t> snapshot() const;

  // Replays a snapshot produced by this store (or an identically
  // registered one). Unknown cell names are skipped; registered cells
  // missing from the blob are left untouched.
  void restore(std::span<const uint8_t> blob);

  // Like restore(), but only replays cells whose name passes `filter`.
  // Used by recovery paths that roll back a subset of an executor's state
  // (e.g. spout routing cursors while the source-reader cells stay live).
  void restore_if(std::span<const uint8_t> blob,
                  const std::function<bool(const std::string&)>& filter);

  // True if any registered cell name passes `filter`.
  bool has_cell_matching(
      const std::function<bool(const std::string&)>& filter) const;

  size_t cell_count() const { return cells_.size(); }
  bool empty() const { return cells_.empty(); }

 private:
  struct Cell {
    std::string name;
    SaveFn save;
    RestoreFn restore;
  };
  std::vector<Cell> cells_;
};

}  // namespace whale::state
