#include "state/state_store.h"

#include <cassert>

namespace whale::state {

void StateStore::register_cell(std::string name, SaveFn save,
                               RestoreFn restore) {
  for (const auto& c : cells_) {
    assert(c.name != name && "duplicate state cell name");
    (void)c;
  }
  cells_.push_back(Cell{std::move(name), std::move(save),
                        std::move(restore)});
}

std::vector<uint8_t> StateStore::snapshot() const {
  ByteWriter w;
  w.put_varint(cells_.size());
  for (const auto& c : cells_) {
    w.put_string(c.name);
    ByteWriter body;
    c.save(body);
    auto bytes = body.take();
    w.put_bytes(std::span<const uint8_t>(bytes.data(), bytes.size()));
  }
  return w.take();
}

void StateStore::restore(std::span<const uint8_t> blob) {
  restore_if(blob, nullptr);
}

void StateStore::restore_if(
    std::span<const uint8_t> blob,
    const std::function<bool(const std::string&)>& filter) {
  ByteReader r(blob);
  const size_t n = r.get_varint();
  for (size_t i = 0; i < n; ++i) {
    const std::string name = r.get_string();
    const std::vector<uint8_t> body = r.get_bytes();
    if (filter && !filter(name)) continue;
    for (auto& c : cells_) {
      if (c.name != name) continue;
      ByteReader br(std::span<const uint8_t>(body.data(), body.size()));
      c.restore(br);
      break;
    }
  }
}

bool StateStore::has_cell_matching(
    const std::function<bool(const std::string&)>& filter) const {
  for (const auto& c : cells_) {
    if (filter(c.name)) return true;
  }
  return false;
}

}  // namespace whale::state
