#include "state/state_store.h"

#include <algorithm>
#include <cassert>

namespace whale::state {

void StateStore::register_cell(std::string name, SaveFn save,
                               RestoreFn restore) {
  for (const auto& c : cells_) {
    assert(c.name != name && "duplicate state cell name");
    (void)c;
  }
  Cell c;
  c.name = std::move(name);
  c.save = std::move(save);
  c.restore = std::move(restore);
  cells_.push_back(std::move(c));
}

std::vector<uint8_t> StateStore::snapshot() const {
  ByteWriter w;
  w.put_varint(cells_.size());
  for (const auto& c : cells_) {
    w.put_string(c.name);
    ByteWriter body;
    c.save(body);
    auto bytes = body.take();
    w.put_bytes(std::span<const uint8_t>(bytes.data(), bytes.size()));
  }
  return w.take();
}

std::vector<uint8_t> StateStore::snapshot_delta(uint64_t page_bytes,
                                                bool force_full,
                                                DeltaStats* stats) {
  assert(page_bytes > 0);
  DeltaStats ds;
  ds.full_bytes = varint_size(cells_.size());

  // Serialize every cell first (full_bytes counts what snapshot() would
  // produce, and the fresh bytes become the pending baseline either way).
  struct Dirty {
    size_t cell;
    std::vector<std::pair<uint64_t, std::span<const uint8_t>>> pages;
  };
  std::vector<Dirty> dirty;
  for (size_t i = 0; i < cells_.size(); ++i) {
    Cell& c = cells_[i];
    ByteWriter body;
    c.save(body);
    c.pending = body.take();
    c.has_pending = true;
    ds.full_bytes += varint_size(c.name.size()) + c.name.size() +
                     varint_size(c.pending.size()) + c.pending.size();

    if (!force_full && c.pending == c.baseline) {
      ++ds.clean_cells;
      continue;
    }
    ++ds.dirty_cells;
    Dirty d;
    d.cell = i;
    const auto& cur = c.pending;
    const auto& base = c.baseline;
    const uint64_t n_pages =
        (cur.size() + page_bytes - 1) / page_bytes;
    for (uint64_t p = 0; p < n_pages; ++p) {
      const size_t off = static_cast<size_t>(p * page_bytes);
      const size_t len = std::min<size_t>(page_bytes, cur.size() - off);
      const bool differs =
          force_full || off + len > base.size() ||
          !std::equal(cur.begin() + static_cast<ptrdiff_t>(off),
                      cur.begin() + static_cast<ptrdiff_t>(off + len),
                      base.begin() + static_cast<ptrdiff_t>(off));
      if (differs) {
        d.pages.emplace_back(
            p, std::span<const uint8_t>(cur.data() + off, len));
      }
    }
    // A shrunk cell can diff clean on every surviving page yet still need
    // its new (smaller) length applied; an empty page list carries it.
    dirty.push_back(std::move(d));
  }

  ByteWriter w;
  w.put_varint(dirty.size());
  for (const auto& d : dirty) {
    const Cell& c = cells_[d.cell];
    w.put_string(c.name);
    w.put_varint(c.pending.size());
    w.put_varint(d.pages.size());
    for (const auto& [idx, page] : d.pages) {
      w.put_varint(idx);
      w.put_bytes(page);
    }
  }
  auto blob = w.take();
  ds.shipped_bytes = blob.size();
  if (stats) *stats = ds;
  return blob;
}

void StateStore::commit_baseline() {
  for (auto& c : cells_) {
    if (!c.has_pending) continue;
    c.baseline = std::move(c.pending);
    c.pending.clear();
    c.has_pending = false;
  }
}

void StateStore::drop_pending_baseline() {
  for (auto& c : cells_) {
    c.pending.clear();
    c.has_pending = false;
  }
}

void StateStore::rebase(std::span<const uint8_t> full_image) {
  for (auto& c : cells_) {
    c.baseline.clear();
    c.pending.clear();
    c.has_pending = false;
  }
  if (full_image.empty()) return;
  ByteReader r(full_image);
  const size_t n = r.get_varint();
  for (size_t i = 0; i < n; ++i) {
    const std::string name = r.get_string();
    std::vector<uint8_t> body = r.get_bytes();
    for (auto& c : cells_) {
      if (c.name != name) continue;
      c.baseline = std::move(body);
      break;
    }
  }
}

void StateStore::restore(std::span<const uint8_t> blob) {
  restore_if(blob, nullptr);
}

void StateStore::restore_if(
    std::span<const uint8_t> blob,
    const std::function<bool(const std::string&)>& filter) {
  ByteReader r(blob);
  const size_t n = r.get_varint();
  for (size_t i = 0; i < n; ++i) {
    const std::string name = r.get_string();
    const std::vector<uint8_t> body = r.get_bytes();
    if (filter && !filter(name)) continue;
    for (auto& c : cells_) {
      if (c.name != name) continue;
      ByteReader br(std::span<const uint8_t>(body.data(), body.size()));
      c.restore(br);
      break;
    }
  }
}

bool StateStore::has_cell_matching(
    const std::function<bool(const std::string&)>& filter) const {
  for (const auto& c : cells_) {
    if (filter(c.name)) return true;
  }
  return false;
}

}  // namespace whale::state
