// Checkpointing & state management configuration (DESIGN.md §10).
//
// Mirrors the obs layer's zero-overhead contract: the subsystem can be
// compiled out entirely with -DWHALE_NO_STATE (CMake option WHALE_NO_STATE),
// and even when compiled in it is disabled by default. With checkpointing
// off the engine schedules zero extra events and counts nothing, so the
// behavioural fingerprints stay bit-identical to the committed baseline.
#pragma once

#include "common/time.h"

namespace whale::state {

#ifdef WHALE_NO_STATE
inline constexpr bool kCompiled = false;
#else
inline constexpr bool kCompiled = true;
#endif

// Knobs for the checkpoint coordinator and the simulated persistent store.
// Lives here (header-only) so core/config.h can embed it without a link
// dependency on whale_state.
struct StateConfig {
  // Master switch. Off = no barriers, no snapshots, no recovery changes.
  bool enabled = false;

  // Interval between epoch barrier injections at the spouts. Also the
  // alignment-stall bound: an epoch that has not committed by the next
  // tick is aborted, so alignment can never wedge the pipeline for more
  // than one interval.
  Duration checkpoint_interval = ms(100);

  // Simulated persistent store calibration (think local NVMe + fsync).
  // Snapshot writes/reads are modeled as latency + bytes/bandwidth and
  // charged asynchronously — the executor only pays serialization CPU.
  double store_write_gbps = 2.0;   // GB/s sequential write
  double store_read_gbps = 4.0;    // GB/s sequential read
  Duration store_write_latency = us(200);
  Duration store_read_latency = us(100);

  // When true (default), a node restart restores the last committed epoch
  // and rewinds spouts to its source offsets instead of relying on the
  // acker's timeout replay; acker replay is disabled for the run.
  bool recover_from_checkpoint = true;

  // --- remote-state backend (DESIGN.md §12) -------------------------------
  // When true, snapshots go to RDMA-registered memory on a dedicated
  // state-host node appended to the fabric, via one-sided WRITEs (zero
  // receiver CPU); recovery reads the committed images back with
  // one-sided READs. The local persistent-store model above is bypassed.
  bool remote = false;
  // Incremental/differential snapshots: only pages of dirty cells cross
  // the wire (StateStore::snapshot_delta). Requires `remote` — the local
  // store path always writes full images.
  bool incremental = false;
  // Flink-style unaligned barriers: snapshot at the FIRST barrier of an
  // epoch and keep processing; tuples arriving on not-yet-fenced channels
  // are captured as channel state (and re-injected at recovery) instead
  // of stalling the executor for alignment.
  bool unaligned = false;
  // Page granularity of the differential diff. Smaller pages ship fewer
  // bytes per dirty cell but more per-page framing.
  uint64_t delta_page_bytes = 256;
  // Memory-region sizing on the state host: regions are registered at
  // bind time with at least this capacity and doubled (re-registered)
  // when a task's image outgrows them.
  uint64_t mr_min_capacity = 4096;
  // Latency charged to a snapshot WRITE that first has to re-register a
  // grown memory region (pinning + rkey exchange, off the data path).
  Duration mr_register_latency = us(50);
};

// Modeled time to push `bytes` through the store at `gbps` plus fixed
// latency. Used for both snapshot writes and recovery reads.
inline Duration store_transfer_time(uint64_t bytes, double gbps,
                                    Duration latency) {
  const double secs =
      gbps > 0 ? static_cast<double>(bytes) / (gbps * 1e9) : 0.0;
  return latency + from_seconds(secs);
}

}  // namespace whale::state
