#include "apps/fingerprint_suite.h"

#include <stdexcept>

#include "apps/ride_hailing_app.h"
#include "apps/stock_app.h"
#include "core/engine.h"
#include "faults/plan.h"

namespace whale::apps {

namespace {

core::EngineConfig base_config(core::SystemVariant v) {
  core::EngineConfig cfg;
  cfg.cluster.num_nodes = 8;
  cfg.cluster.cores_per_node = 16;
  cfg.variant = v;
  cfg.seed = 42;
  return cfg;
}

RideHailingAppParams ride_params() {
  RideHailingAppParams p;
  p.matching_parallelism = 32;
  p.aggregation_parallelism = 4;
  p.driver_spout_parallelism = 2;
  p.request_rate = dsps::RateProfile::constant(3000);
  p.driver_rate = dsps::RateProfile::constant(2000);
  return p;
}

FingerprintLine probe_ride(const std::string& label, core::SystemVariant v,
                           const ConfigMutator& mutate) {
  core::EngineConfig cfg = base_config(v);
  if (mutate) mutate(cfg);
  core::Engine e(cfg, build_ride_hailing(ride_params()).topology);
  const auto& r = e.run(ms(100), ms(300));
  return {"fig13/" + label, r.fingerprint()};
}

FingerprintLine probe_stock(const std::string& label, core::SystemVariant v,
                            const ConfigMutator& mutate) {
  core::EngineConfig cfg = base_config(v);
  if (mutate) mutate(cfg);
  StockAppParams p;
  p.matching_parallelism = 32;
  p.aggregation_parallelism = 4;
  p.order_rate = dsps::RateProfile::constant(3000);
  core::Engine e(cfg, build_stock_exchange(p).topology);
  const auto& r = e.run(ms(100), ms(300));
  return {"fig15/" + label, r.fingerprint()};
}

FingerprintLine probe_faults(const ConfigMutator& mutate) {
  core::EngineConfig cfg = base_config(core::SystemVariant::Whale());
  cfg.enable_acking = true;
  cfg.replay_on_failure = true;
  cfg.ack_timeout = ms(120);
  cfg.faults = faults::FaultPlan::random(/*seed=*/7, cfg.cluster.num_nodes,
                                         /*horizon=*/ms(400),
                                         /*num_faults=*/6);
  if (mutate) mutate(cfg);
  core::Engine e(cfg, build_ride_hailing(ride_params()).topology);
  const auto& r = e.run(ms(100), ms(300));
  return {"faults/whale-seeded", r.fingerprint()};
}

}  // namespace

std::vector<std::string> fingerprint_probe_labels() {
  return {"fig13/storm", "fig13/rdma-storm", "fig13/whale-woc", "fig13/whale",
          "fig15/storm", "fig15/rdmc",       "fig15/whale",
          "faults/whale-seeded"};
}

FingerprintLine run_fingerprint_probe(const std::string& label,
                                      const ConfigMutator& mutate) {
  if (label == "fig13/storm") {
    return probe_ride("storm", core::SystemVariant::Storm(), mutate);
  }
  if (label == "fig13/rdma-storm") {
    return probe_ride("rdma-storm", core::SystemVariant::RdmaStorm(), mutate);
  }
  if (label == "fig13/whale-woc") {
    return probe_ride("whale-woc", core::SystemVariant::WhaleWoc(), mutate);
  }
  if (label == "fig13/whale") {
    return probe_ride("whale", core::SystemVariant::Whale(), mutate);
  }
  if (label == "fig15/storm") {
    return probe_stock("storm", core::SystemVariant::Storm(), mutate);
  }
  if (label == "fig15/rdmc") {
    return probe_stock("rdmc", core::SystemVariant::Rdmc(), mutate);
  }
  if (label == "fig15/whale") {
    return probe_stock("whale", core::SystemVariant::Whale(), mutate);
  }
  if (label == "faults/whale-seeded") {
    return probe_faults(mutate);
  }
  throw std::out_of_range("unknown fingerprint probe: " + label);
}

std::vector<FingerprintLine> run_fingerprint_suite(
    const ConfigMutator& mutate) {
  std::vector<FingerprintLine> out;
  for (const auto& label : fingerprint_probe_labels()) {
    out.push_back(run_fingerprint_probe(label, mutate));
  }
  return out;
}

}  // namespace whale::apps
