#include "apps/ride_hailing_app.h"

namespace whale::apps {

BuiltApp build_ride_hailing(const RideHailingAppParams& p) {
  dsps::TopologyBuilder b;
  const auto wl = p.workload;
  const int drivers = b.add_spout(
      "driver-locations",
      [wl] { return std::make_unique<workloads::DriverLocationSpout>(wl); },
      p.driver_spout_parallelism, p.driver_rate);
  const int requests = b.add_spout(
      "passenger-requests",
      [wl] { return std::make_unique<workloads::PassengerRequestSpout>(wl); },
      /*parallelism=*/1, p.request_rate);
  const int matching = b.add_bolt(
      "matching",
      [wl] { return std::make_unique<workloads::MatchingBolt>(wl); },
      p.matching_parallelism);
  const int aggregation = b.add_bolt(
      "aggregation",
      [wl] { return std::make_unique<workloads::RideAggregationBolt>(wl); },
      p.aggregation_parallelism);

  // Driver locations are key-grouped by driver id (tuple field 1).
  b.connect(drivers, matching, dsps::Grouping::kFields, /*key_field=*/1);
  // Passenger requests are broadcast to every matching instance.
  const int all_stream = b.connect(requests, matching, dsps::Grouping::kAll);
  // Match results are key-grouped by request id towards the sink.
  b.connect(matching, aggregation, dsps::Grouping::kFields, /*key_field=*/0);

  BuiltApp app;
  app.topology = b.build();
  app.all_grouped_stream = all_stream;
  app.matching_op = matching;
  app.sink_op = aggregation;
  return app;
}

}  // namespace whale::apps
