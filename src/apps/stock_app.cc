#include "apps/stock_app.h"

namespace whale::apps {

BuiltStockApp build_stock_exchange(const StockAppParams& p) {
  dsps::TopologyBuilder b;
  const auto wl = p.workload;
  const int source = b.add_spout(
      "orders", [wl] { return std::make_unique<workloads::StockSpout>(wl); },
      /*parallelism=*/1, p.order_rate);
  // The split operator must stay at parallelism 1: it is the source
  // instance S of the one-to-many partitioning (Sec. 3.2).
  const bool two = p.separate_buy_sell_streams;
  const int split = b.add_bolt(
      "split",
      [wl, two] { return std::make_unique<workloads::SplitBolt>(wl, two); },
      /*parallelism=*/1);
  const int matching = b.add_bolt(
      "matching",
      [wl] { return std::make_unique<workloads::StockMatchingBolt>(wl); },
      p.matching_parallelism);
  const int aggregation = b.add_bolt(
      "aggregation",
      [wl] { return std::make_unique<workloads::VolumeAggregationBolt>(wl); },
      p.aggregation_parallelism);

  b.connect(source, split, dsps::Grouping::kShuffle);
  const int buy_stream = b.connect(split, matching, dsps::Grouping::kAll);
  int sell_stream = -1;
  if (two) {
    sell_stream = b.connect(split, matching, dsps::Grouping::kAll);
  }
  const int trades = b.connect(matching, aggregation, p.aggregation_grouping,
                               /*key_field=*/0);

  BuiltStockApp app;
  app.topology = b.build();
  app.all_grouped_stream = buy_stream;
  app.sell_stream = sell_stream;
  app.matching_op = matching;
  app.sink_op = aggregation;
  app.trades_stream = trades;
  return app;
}

}  // namespace whale::apps
