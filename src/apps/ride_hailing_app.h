// Ride-hailing application topology (paper Fig. 4):
//
//   driver-location spout  --fields(driver)-->  matching  --fields(req)-->
//   passenger-request spout --all-------------^              aggregation
//
// The passenger-request stream is the one-to-many stream whose partitioning
// the paper studies.
#pragma once

#include "dsps/topology.h"
#include "workloads/ridehailing.h"

namespace whale::apps {

struct RideHailingAppParams {
  workloads::RideHailingParams workload;
  int matching_parallelism = 480;
  int aggregation_parallelism = 8;
  int driver_spout_parallelism = 2;
  dsps::RateProfile request_rate = dsps::RateProfile::constant(10000);
  dsps::RateProfile driver_rate = dsps::RateProfile::constant(5000);
};

struct BuiltApp {
  dsps::Topology topology;
  int all_grouped_stream = -1;  // the stream under study
  int matching_op = -1;
  int sink_op = -1;
};

BuiltApp build_ride_hailing(const RideHailingAppParams& p);

}  // namespace whale::apps
