// Stock-exchange application topology (Sec. 5.1):
//
//   order spout --shuffle--> split --all--> matching --fields(symbol)-->
//                                                       aggregation
//
// The split operator's output is the one-to-many stream under study.
#pragma once

#include "dsps/topology.h"
#include "workloads/stock.h"

namespace whale::apps {

struct StockAppParams {
  workloads::StockParams workload;
  int matching_parallelism = 480;
  int aggregation_parallelism = 8;
  dsps::RateProfile order_rate = dsps::RateProfile::constant(10000);
  // Paper-literal mode: the split operator divides orders into a buying
  // stream and a selling stream, BOTH all-grouped into matching (two
  // multicast groups share the source). Default keeps one tagged stream.
  bool separate_buy_sell_streams = false;
  // Partitioning of the trades stream (matching -> aggregation). The
  // volume aggregation is a per-symbol sum, so mergeable strategies
  // (kPartialKey) and key-oblivious ones (kLoadAwareShuffle) are valid
  // alternatives to the default key grouping; bench_skew sweeps them.
  dsps::Grouping aggregation_grouping = dsps::Grouping::kFields;
};

struct BuiltStockApp {
  dsps::Topology topology;
  int all_grouped_stream = -1;   // buy stream in two-stream mode
  int sell_stream = -1;          // -1 in single-stream mode
  int matching_op = -1;
  int sink_op = -1;
  int trades_stream = -1;  // matching -> aggregation (skew-bench target)
};

BuiltStockApp build_stock_exchange(const StockAppParams& p);

}  // namespace whale::apps
