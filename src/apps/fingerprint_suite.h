// The behavioural fingerprint suite: a fixed set of deterministic
// workloads whose RunReport::fingerprint() lines pin the simulator's
// observable behaviour. Two builds are behaviourally equivalent iff the
// suite's output is bit-identical between them.
//
// Shared by tools/fingerprint_probe (prints the lines; diff against
// results/fingerprints_baseline.txt) and tests/test_fingerprint.cc (the
// ctest parity gate, which also re-runs selected probes with tracing
// enabled to prove the obs layer schedules zero extra events).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "core/config.h"

namespace whale::apps {

struct FingerprintLine {
  std::string label;        // e.g. "fig13/whale" or "faults/whale-seeded"
  std::string fingerprint;  // RunReport::fingerprint()
};

// Applied to each probe's EngineConfig just before the engine is built;
// used by the parity tests to flip obs knobs without forking the suite.
using ConfigMutator = std::function<void(core::EngineConfig&)>;

// Runs all eight probes (fig13 x {storm, rdma-storm, whale-woc, whale},
// fig15 x {storm, rdmc, whale}, faults/whale-seeded) in order.
std::vector<FingerprintLine> run_fingerprint_suite(
    const ConfigMutator& mutate = {});

// Runs the single probe with the given label; throws std::out_of_range on
// an unknown label. Cheaper than the full suite for targeted parity tests.
FingerprintLine run_fingerprint_probe(const std::string& label,
                                      const ConfigMutator& mutate = {});

// All probe labels, in suite order.
std::vector<std::string> fingerprint_probe_labels();

}  // namespace whale::apps
